#include "tree/matrix_tree.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_common.hpp"

namespace h2sketch::tree {
namespace {

struct MtCase {
  index_t n;
  index_t dim;
  index_t leaf_size;
  real_t eta;
  std::uint64_t seed;
};

class MatrixTreeProps : public ::testing::TestWithParam<MtCase> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    tree_ = test_util::cube_tree(p.n, p.dim, p.seed, p.leaf_size);
    mt_ = MatrixTree::build(tree_, Admissibility::general(p.eta));
  }
  ClusterTree tree_;
  MatrixTree mt_;
};

TEST_P(MatrixTreeProps, BlocksTileTheMatrixExactlyOnce) {
  const index_t n = tree_.num_points();
  std::vector<uint8_t> cover(static_cast<size_t>(n * n), 0);
  auto mark = [&](index_t level, index_t s, index_t t) {
    for (index_t i = tree_.begin(level, s); i < tree_.end(level, s); ++i)
      for (index_t j = tree_.begin(level, t); j < tree_.end(level, t); ++j)
        ++cover[static_cast<size_t>(i * n + j)];
  };
  for (index_t l = 0; l < mt_.num_levels; ++l) {
    const auto& far = mt_.far[static_cast<size_t>(l)];
    for (index_t r = 0; r < tree_.nodes_at(l); ++r)
      for (index_t j = 0; j < far.row_count(r); ++j) mark(l, r, far.col_at(r, j));
  }
  const index_t leaf = tree_.leaf_level();
  for (index_t r = 0; r < tree_.nodes_at(leaf); ++r)
    for (index_t j = 0; j < mt_.near_leaf.row_count(r); ++j)
      mark(leaf, r, mt_.near_leaf.col_at(r, j));
  for (size_t c = 0; c < cover.size(); ++c) EXPECT_EQ(cover[c], 1) << "cell " << c;
}

TEST_P(MatrixTreeProps, ListsAreSymmetric) {
  auto has_pair = [](const LevelBlockList& list, index_t r, index_t c) {
    for (index_t j = 0; j < list.row_count(r); ++j)
      if (list.col_at(r, j) == c) return true;
    return false;
  };
  for (index_t l = 0; l < mt_.num_levels; ++l) {
    const auto& far = mt_.far[static_cast<size_t>(l)];
    for (index_t r = 0; r < tree_.nodes_at(l); ++r)
      for (index_t j = 0; j < far.row_count(r); ++j)
        EXPECT_TRUE(has_pair(far, far.col_at(r, j), r));
  }
  for (index_t r = 0; r < tree_.nodes_at(tree_.leaf_level()); ++r)
    for (index_t j = 0; j < mt_.near_leaf.row_count(r); ++j)
      EXPECT_TRUE(has_pair(mt_.near_leaf, mt_.near_leaf.col_at(r, j), r));
}

TEST_P(MatrixTreeProps, FarBlocksSatisfyAdmissibility) {
  const auto p = GetParam();
  const Admissibility adm = Admissibility::general(p.eta);
  for (index_t l = 0; l < mt_.num_levels; ++l) {
    const auto& far = mt_.far[static_cast<size_t>(l)];
    for (index_t r = 0; r < tree_.nodes_at(l); ++r)
      for (index_t j = 0; j < far.row_count(r); ++j) {
        const index_t c = far.col_at(r, j);
        EXPECT_TRUE(adm.admissible(tree_.box(l, r), tree_.box(l, c), r == c));
      }
  }
}

TEST_P(MatrixTreeProps, NearLeafPairsViolateAdmissibility) {
  const auto p = GetParam();
  const Admissibility adm = Admissibility::general(p.eta);
  const index_t leaf = tree_.leaf_level();
  for (index_t r = 0; r < tree_.nodes_at(leaf); ++r)
    for (index_t j = 0; j < mt_.near_leaf.row_count(r); ++j) {
      const index_t c = mt_.near_leaf.col_at(r, j);
      EXPECT_FALSE(adm.admissible(tree_.box(leaf, r), tree_.box(leaf, c), r == c));
    }
}

TEST_P(MatrixTreeProps, DiagonalLeafPairsAreNear) {
  const index_t leaf = tree_.leaf_level();
  for (index_t r = 0; r < tree_.nodes_at(leaf); ++r) {
    bool found = false;
    for (index_t j = 0; j < mt_.near_leaf.row_count(r); ++j)
      if (mt_.near_leaf.col_at(r, j) == r) found = true;
    EXPECT_TRUE(found) << "diagonal block missing for leaf " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(EtaSizesDims, MatrixTreeProps,
                         ::testing::Values(MtCase{200, 3, 16, 0.7, 1}, MtCase{200, 3, 16, 0.5, 2},
                                           MtCase{300, 2, 16, 0.9, 3}, MtCase{150, 1, 8, 0.5, 4},
                                           MtCase{128, 3, 32, 0.3, 5}, MtCase{100, 3, 128, 0.7, 6}));

TEST(MatrixTree, WeakAdmissibilityGivesHodlrPattern) {
  const ClusterTree t = test_util::cube_tree(256, 1, 7, 32);
  const MatrixTree mt = MatrixTree::build(t, Admissibility::weak());
  // Exactly the 2^l off-diagonal sibling blocks per level below the root.
  for (index_t l = 1; l < mt.num_levels; ++l)
    EXPECT_EQ(mt.far[static_cast<size_t>(l)].count(), index_t{1} << l);
  EXPECT_EQ(mt.far[0].count(), 0);
  // Near field is only the diagonal leaves.
  EXPECT_EQ(mt.near_leaf.count(), t.nodes_at(t.leaf_level()));
  EXPECT_EQ(mt.csp(), 1);
}

TEST(MatrixTree, SmallerEtaRefinesPartitioningAndGrowsCsp) {
  const ClusterTree t = test_util::cube_tree(2048, 3, 8, 32);
  const MatrixTree loose = MatrixTree::build(t, Admissibility::general(0.9));
  const MatrixTree tight = MatrixTree::build(t, Admissibility::general(0.3));
  // Paper Fig. 4(a)-(b): smaller eta -> more refined partitioning, larger Csp.
  EXPECT_GT(tight.total_far_blocks() + tight.near_leaf.count(),
            loose.total_far_blocks() + loose.near_leaf.count());
  EXPECT_GE(tight.csp(), loose.csp());
}

TEST(MatrixTree, CspBoundedForFixedEtaAcrossSizes) {
  // The sparsity constant must not grow with N (paper §II-A).
  index_t prev_csp = 0;
  for (index_t n : {512, 1024, 2048, 4096}) {
    const ClusterTree t = test_util::cube_tree(n, 3, 9, 32);
    const MatrixTree mt = MatrixTree::build(t, Admissibility::general(0.7));
    if (n > 1024) EXPECT_LE(mt.csp(), prev_csp * 2);
    prev_csp = std::max(prev_csp, mt.csp());
  }
  EXPECT_LE(prev_csp, 128);
}

TEST_P(MatrixTreeProps, PerLevelNearListsFormAChain) {
  // near[leaf] is the dense list; every near pair's parent pair must be a
  // near pair at the coarser level (the dual traversal only descends
  // through inadmissible pairs), and near[0] is exactly the root pair.
  EXPECT_EQ(mt_.near.back().col, mt_.near_leaf.col);
  EXPECT_EQ(mt_.near[0].count(), 1);
  EXPECT_EQ(mt_.near[0].col_at(0, 0), 0);
  auto has_pair = [](const LevelBlockList& list, index_t r, index_t c) {
    for (index_t j = 0; j < list.row_count(r); ++j)
      if (list.col_at(r, j) == c) return true;
    return false;
  };
  for (index_t l = 1; l < mt_.num_levels; ++l) {
    const auto& near = mt_.near[static_cast<size_t>(l)];
    for (index_t r = 0; r < tree_.nodes_at(l); ++r)
      for (index_t j = 0; j < near.row_count(r); ++j)
        EXPECT_TRUE(has_pair(mt_.near[static_cast<size_t>(l - 1)], r / 2, near.col_at(r, j) / 2));
  }
}

TEST_P(MatrixTreeProps, EveryLevelPairIsNearXorFarDescendant) {
  // At each level, the set of visited pairs = children of the previous
  // level's near pairs; each is either far (stops) or near (descends).
  for (index_t l = 1; l < mt_.num_levels; ++l) {
    const auto& far = mt_.far[static_cast<size_t>(l)];
    const auto& near = mt_.near[static_cast<size_t>(l)];
    const auto& parent_near = mt_.near[static_cast<size_t>(l - 1)];
    index_t expected = 0;
    for (index_t r = 0; r < tree_.nodes_at(l - 1); ++r) expected += 4 * parent_near.row_count(r);
    EXPECT_EQ(far.count() + near.count(), expected);
  }
}

TEST(MatrixTree, SingleNodeTreeIsOneDenseBlock) {
  const ClusterTree t = test_util::cube_tree(30, 3, 64, 64);
  const MatrixTree mt = MatrixTree::build(t, Admissibility::general(0.7));
  EXPECT_FALSE(mt.has_any_far());
  EXPECT_EQ(mt.near_leaf.count(), 1);
}

} // namespace
} // namespace h2sketch::tree
