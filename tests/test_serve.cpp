#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "backend/registry.hpp"
#include "common/errors.hpp"
#include "kernels/kernels.hpp"
#include "serve/coalescer.hpp"
#include "serve/operator_cache.hpp"
#include "serve/telemetry.hpp"
#include "test_common.hpp"

/// \file test_serve.cpp
/// The serving layer: operator-cache semantics (hit/miss accounting, LRU
/// eviction under a byte budget, no-evict-while-pinned, single-flight
/// builds), coalescer flush-on-full vs flush-on-timeout driven by a manual
/// clock and manual pumping (no threads, no real sleeps), correctness of
/// coalesced results against the direct blocked launches, and the latency
/// histogram's quantile bounds.

namespace h2sketch::serve {
namespace {

ServedOperator dummy_op(std::size_t bytes) {
  ServedOperator op;
  op.bytes = bytes;
  op.backend = "cpu";
  return op;
}

OperatorKey key_of(const std::string& kernel) {
  OperatorKey k;
  k.kernel = kernel;
  k.geometry = 0x1234;
  k.tol = 1e-6;
  k.backend = "cpu";
  return k;
}

TEST(OperatorCache, HitMissAccounting) {
  OperatorCache cache; // unbounded
  int built = 0;
  auto h1 = cache.acquire(key_of("a"), [&] {
    ++built;
    return dummy_op(100);
  });
  ASSERT_TRUE(h1);
  auto h2 = cache.acquire(key_of("a"), [&] {
    ++built;
    return dummy_op(100);
  });
  EXPECT_EQ(built, 1);
  EXPECT_EQ(h1.id(), h2.id());
  EXPECT_FALSE(cache.find(key_of("b")));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.builds, 1u);
  EXPECT_EQ(s.bytes_cached, 100u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(OperatorCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  OperatorCache cache(250);
  (void)cache.acquire(key_of("a"), [] { return dummy_op(100); }); // handle dropped
  (void)cache.acquire(key_of("b"), [] { return dummy_op(100); });
  EXPECT_TRUE(cache.find(key_of("a"))); // touch a: b becomes the LRU entry
  (void)cache.acquire(key_of("c"), [] { return dummy_op(100); });
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.bytes_cached, 200u);
  EXPECT_FALSE(cache.find(key_of("b"))); // the LRU victim
  EXPECT_TRUE(cache.find(key_of("a")));
  EXPECT_TRUE(cache.find(key_of("c")));
}

TEST(OperatorCache, NeverEvictsPinnedOperators) {
  OperatorCache cache(150);
  auto ha = cache.acquire(key_of("a"), [] { return dummy_op(100); });
  auto hb = cache.acquire(key_of("b"), [] { return dummy_op(100); });
  // Over budget but both operators have live handles: nothing may go.
  CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_GT(s.eviction_skips, 0u);
  EXPECT_EQ(s.bytes_cached, 200u);
  EXPECT_TRUE(cache.find(key_of("a")));
  EXPECT_TRUE(cache.find(key_of("b")));

  ha = OperatorHandle(); // unpin a (hb and the new handle stay pinned)
  auto hc = cache.acquire(key_of("c"), [] { return dummy_op(100); });
  s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_FALSE(cache.find(key_of("a")));
  EXPECT_TRUE(cache.find(key_of("b")));
  EXPECT_TRUE(cache.find(key_of("c")));
}

TEST(OperatorCache, ConcurrentMissesBuildOnce) {
  OperatorCache cache;
  std::atomic<int> built{0};
  std::vector<std::thread> threads;
  std::vector<OperatorHandle> handles(4);
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      handles[static_cast<size_t>(t)] = cache.acquire(key_of("shared"), [&] {
        built.fetch_add(1);
        return dummy_op(64);
      });
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(built.load(), 1);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.builds, 1u);
  EXPECT_EQ(s.hits + s.misses, 4u);
  for (const auto& h : handles) EXPECT_EQ(h.id(), handles[0].id());
}

TEST(OperatorCache, BuildFailurePropagatesAndLeavesNoEntry) {
  OperatorCache cache;
  EXPECT_THROW(cache.acquire(key_of("bad"),
                             []() -> ServedOperator { throw std::runtime_error("boom"); }),
               std::runtime_error);
  EXPECT_FALSE(cache.find(key_of("bad")));
  auto h = cache.acquire(key_of("bad"), [] { return dummy_op(10); });
  EXPECT_TRUE(h); // the failed build did not wedge the key
}

TEST(GeometryFingerprint, DistinguishesPointsAndLeafSize) {
  const auto p1 = geo::uniform_random_cube(64, 3, 11);
  const auto p2 = geo::uniform_random_cube(64, 3, 12);
  EXPECT_EQ(geometry_fingerprint(p1, 16), geometry_fingerprint(p1, 16));
  EXPECT_NE(geometry_fingerprint(p1, 16), geometry_fingerprint(p2, 16));
  EXPECT_NE(geometry_fingerprint(p1, 16), geometry_fingerprint(p1, 32));
}

TEST(LatencyHistogram, QuantilesWithinBucketBounds) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  for (int i = 0; i < 98; ++i) h.record(1e-3);
  h.record(0.5);
  h.record(0.5);
  EXPECT_EQ(h.count(), 100u);
  // Log-bucketed estimates: relative error bounded by the 2^(1/4) bucket.
  EXPECT_NEAR(h.quantile(0.50), 1e-3, 0.25e-3);
  EXPECT_NEAR(h.quantile(0.99), 0.5, 0.15);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

/// A small factored operator on the shared cpu device, cached across tests
/// (function-local static cache). Tests that assert on the per-operator
/// metrics pass a distinct `tol` so they get an operator — and counters —
/// of their own; metrics accumulate for the operator's lifetime.
OperatorHandle serving_operator(real_t tol = 1e-8) {
  static OperatorCache cache;
  static const kern::ExponentialKernel base(0.3);
  static const kern::RidgeKernel kernel(base, 1.0);
  static const geo::PointCloud points = geo::uniform_random_cube(192, 3, 77);
  ServeBuildOptions opts;
  opts.leaf_size = 16;
  opts.construction.tol = tol;
  opts.construction.sample_block = 16;
  opts.construction.initial_samples = 32;
  return cache.acquire(make_operator_key(points, kernel, opts, "cpu"),
                       [&] { return build_served_operator(points, kernel, opts, "cpu"); });
}

CoalescerOptions manual_options(index_t max_batch, double max_delay) {
  CoalescerOptions o;
  o.max_batch = max_batch;
  o.max_delay_seconds = max_delay;
  o.manual_pump = true;
  return o;
}

TEST(Coalescer, FlushesOnFullBatchAndMatchesBlockedLaunch) {
  auto op = serving_operator();
  const index_t n = op->size();
  auto clock = std::make_shared<ManualClock>();
  Coalescer co(manual_options(4, 1e9), clock);

  const Matrix xs = test_util::random_matrix(n, 4, 5);
  Matrix ys(n, 4);
  std::vector<std::future<void>> futs;
  for (index_t j = 0; j < 3; ++j)
    futs.push_back(co.submit(op, RequestKind::Matvec,
                             const_real_span(xs.data() + j * n, static_cast<size_t>(n)),
                             real_span(ys.data() + j * n, static_cast<size_t>(n))));
  EXPECT_EQ(co.pump(), 0); // 3 < max_batch and the deadline is far away
  EXPECT_EQ(co.pending(), 3);
  futs.push_back(co.submit(op, RequestKind::Matvec,
                           const_real_span(xs.data() + 3 * n, static_cast<size_t>(n)),
                           real_span(ys.data() + 3 * n, static_cast<size_t>(n))));
  EXPECT_EQ(co.pump(), 4); // full group flushes in one blocked launch
  EXPECT_EQ(co.pending(), 0);
  for (auto& f : futs) f.get();

  // The coalesced launch is exactly one blocked matvec: bitwise identical.
  Matrix y_ref(n, 4);
  batched::ExecutionContext ctx(backend::shared_backend("cpu"));
  op->matrix.matvec(ctx, xs.view(), y_ref.view());
  EXPECT_EQ(max_abs_diff(ys.view(), y_ref.view()), 0.0);

  const MetricsSnapshot m = op->metrics->snapshot();
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.flush_full, 1u);
  EXPECT_EQ(m.flush_timeout, 0u);
  EXPECT_EQ(m.coalesced_rhs, 4u);
  EXPECT_EQ(m.matvecs, 4u);
}

TEST(Coalescer, FlushesOnTimeoutWithManualClock) {
  auto op = serving_operator(2e-8); // private operator: fresh latency stats
  const index_t n = op->size();
  auto clock = std::make_shared<ManualClock>();
  Coalescer co(manual_options(64, 0.5), clock);
  const std::uint64_t timeouts0 = op->metrics->flush_timeout.load();

  const Matrix xs = test_util::random_matrix(n, 2, 9);
  Matrix ys(n, 2);
  std::vector<std::future<void>> futs;
  for (index_t j = 0; j < 2; ++j)
    futs.push_back(co.submit(op, RequestKind::Matvec,
                             const_real_span(xs.data() + j * n, static_cast<size_t>(n)),
                             real_span(ys.data() + j * n, static_cast<size_t>(n))));
  EXPECT_EQ(co.pump(), 0);
  clock->advance(0.4);
  EXPECT_EQ(co.pump(), 0); // 0.4 < max_delay: still waiting for more RHS
  clock->advance(0.2);
  EXPECT_EQ(co.pump(), 2); // oldest request is now 0.6s old: flush
  for (auto& f : futs) f.get();

  const MetricsSnapshot m = op->metrics->snapshot();
  EXPECT_EQ(m.flush_timeout - timeouts0, 1u);
  // ManualClock latency: both requests waited 0.6s; the log-bucketed p50
  // must land within one bucket (2^(1/4) ~ 19%) of that.
  EXPECT_NEAR(m.p50_seconds, 0.6, 0.15);
}

TEST(Coalescer, SolveRequestsCoalesceAndMatchSolveMany) {
  auto op = serving_operator();
  const index_t n = op->size();
  auto clock = std::make_shared<ManualClock>();
  Coalescer co(manual_options(3, 1e9), clock);

  const Matrix bs = test_util::random_matrix(n, 3, 13);
  Matrix xs(n, 3);
  std::vector<std::future<void>> futs;
  for (index_t j = 0; j < 3; ++j)
    futs.push_back(co.submit(op, RequestKind::Solve,
                             const_real_span(bs.data() + j * n, static_cast<size_t>(n)),
                             real_span(xs.data() + j * n, static_cast<size_t>(n))));
  EXPECT_EQ(co.pump(), 3);
  for (auto& f : futs) f.get();

  Matrix x_ref(n, 3);
  batched::ExecutionContext ctx(backend::shared_backend("cpu"));
  op->factor.solve_many(bs.view(), x_ref.view(), ctx);
  EXPECT_EQ(max_abs_diff(xs.view(), x_ref.view()), 0.0);
}

TEST(Coalescer, MatvecAndSolveFormSeparateGroups) {
  auto op = serving_operator();
  const index_t n = op->size();
  auto clock = std::make_shared<ManualClock>();
  Coalescer co(manual_options(2, 1e9), clock);

  const Matrix x = test_util::random_matrix(n, 2, 21);
  Matrix y(n, 2);
  // One of each kind: neither group is full, so nothing may flush...
  auto f0 = co.submit(op, RequestKind::Matvec, const_real_span(x.data(), static_cast<size_t>(n)),
                      real_span(y.data(), static_cast<size_t>(n)));
  auto f1 = co.submit(op, RequestKind::Solve,
                      const_real_span(x.data() + n, static_cast<size_t>(n)),
                      real_span(y.data() + n, static_cast<size_t>(n)));
  EXPECT_EQ(co.pump(), 0);
  EXPECT_EQ(co.pending(), 2);
  // ...until drain forces both launches through.
  EXPECT_EQ(co.drain(), 2);
  f0.get();
  f1.get();
}

TEST(Coalescer, ManualModeThrowsWhenQueueIsFull) {
  auto op = serving_operator();
  const index_t n = op->size();
  CoalescerOptions o = manual_options(64, 1e9);
  o.queue_capacity = 2;
  auto clock = std::make_shared<ManualClock>();
  Coalescer co(o, clock);

  const Matrix x = test_util::random_matrix(n, 3, 33);
  Matrix y(n, 3);
  auto span_x = [&](index_t j) { return const_real_span(x.data() + j * n, static_cast<size_t>(n)); };
  auto span_y = [&](index_t j) { return real_span(y.data() + j * n, static_cast<size_t>(n)); };
  auto f0 = co.submit(op, RequestKind::Matvec, span_x(0), span_y(0));
  auto f1 = co.submit(op, RequestKind::Matvec, span_x(1), span_y(1));
  EXPECT_THROW(co.submit(op, RequestKind::Matvec, span_x(2), span_y(2)), std::runtime_error);
  EXPECT_EQ(co.drain(), 2);
  f0.get();
  f1.get();
}

TEST(Coalescer, ThreadedLanesServeConcurrentClients) {
  auto op = serving_operator(4e-8); // private operator: fresh counters
  const index_t n = op->size();
  CoalescerOptions o;
  o.max_batch = 8;
  o.max_delay_seconds = 500e-6;
  o.lanes = 2;
  Coalescer co(o);

  constexpr int kClients = 4, kPerClient = 8;
  const Matrix xs = test_util::random_matrix(n, kClients * kPerClient, 3);
  Matrix ys(n, kClients * kPerClient);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const index_t j = static_cast<index_t>(c * kPerClient + r);
        auto fut = co.submit(op, RequestKind::Matvec,
                             const_real_span(xs.data() + j * n, static_cast<size_t>(n)),
                             real_span(ys.data() + j * n, static_cast<size_t>(n)));
        fut.get();
      }
    });
  for (auto& t : clients) t.join();
  co.stop();

  Matrix y_ref(n, xs.cols());
  batched::ExecutionContext ctx(backend::shared_backend("cpu"));
  op->matrix.matvec(ctx, xs.view(), y_ref.view());
  // Lanes coalesce nondeterministic subsets of the columns, and blocked
  // gemm rounding depends on the column grouping at the last ulp — so this
  // comparison is to tolerance, unlike the fixed-batch tests above.
  EXPECT_LT(test_util::rel_fro_error(ys.view(), y_ref.view()), test_util::kMatvecRelTol);
  EXPECT_EQ(op->metrics->latency.count(), op->metrics->snapshot().requests);
}

// --- recovery policies -------------------------------------------------

TEST(OperatorCache, RetryableBuildErrorsRetryWithCappedBackoff) {
  std::vector<double> sleeps;
  CacheOptions o;
  o.max_build_retries = 3;
  o.backoff_initial_seconds = 0.05;
  o.backoff_max_seconds = 0.15;
  o.sleep_fn = [&](double d) { sleeps.push_back(d); };
  OperatorCache cache(o);

  int invocations = 0;
  auto h = cache.acquire(key_of("flaky"), [&]() -> ServedOperator {
    if (++invocations < 4) throw LaunchError("transient launch failure");
    return dummy_op(10);
  });
  EXPECT_TRUE(h);
  EXPECT_EQ(invocations, 4);
  // Exponential backoff from 0.05, capped at backoff_max: 0.05, 0.1, 0.15.
  ASSERT_EQ(sleeps.size(), 3u);
  EXPECT_DOUBLE_EQ(sleeps[0], 0.05);
  EXPECT_DOUBLE_EQ(sleeps[1], 0.10);
  EXPECT_DOUBLE_EQ(sleeps[2], 0.15);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.build_retries, 3u);
  EXPECT_EQ(s.build_failures, 0u);
}

TEST(OperatorCache, NonRetryableAndUnknownErrorsAreNotRetried) {
  CacheOptions o;
  o.max_build_retries = 5;
  o.sleep_fn = [](double) { FAIL() << "must not back off for a non-retryable error"; };
  OperatorCache cache(o);

  int invocations = 0;
  EXPECT_THROW(cache.acquire(key_of("indefinite"),
                             [&]() -> ServedOperator {
                               ++invocations;
                               throw NumericalError("not SPD");
                             }),
               NumericalError);
  EXPECT_EQ(invocations, 1); // deterministic failure: retrying cannot help

  // Exceptions outside the taxonomy propagate on the first attempt too —
  // the cache has no basis to judge whether re-running them is safe.
  invocations = 0;
  EXPECT_THROW(cache.acquire(key_of("unknown"),
                             [&]() -> ServedOperator {
                               ++invocations;
                               throw std::runtime_error("not taxonomy");
                             }),
               std::runtime_error);
  EXPECT_EQ(invocations, 1);
  EXPECT_EQ(cache.stats().build_failures, 2u);
}

TEST(OperatorCache, ConcurrentMissesShareOneFailingBuild) {
  CacheOptions opts;
  opts.max_build_retries = 0; // single invocation per acquire
  OperatorCache cache(opts);
  std::atomic<int> invocations{0};
  std::promise<void> entered;
  auto entered_fut = entered.get_future().share();

  std::atomic<int> failures{0};
  std::thread builder([&] {
    try {
      (void)cache.acquire(key_of("shared-fail"), [&]() -> ServedOperator {
        if (invocations.fetch_add(1) == 0)
          entered.set_value(); // let the joiners pile onto the pending future
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        throw LaunchError("build died");
      });
    } catch (const LaunchError&) {
      failures.fetch_add(1);
    }
  });
  entered_fut.wait();
  std::vector<std::thread> joiners;
  for (int t = 0; t < 3; ++t)
    joiners.emplace_back([&] {
      try {
        (void)cache.acquire(key_of("shared-fail"),
                            [&]() -> ServedOperator { throw LaunchError("build died"); });
      } catch (const LaunchError&) {
        failures.fetch_add(1);
      }
    });
  builder.join();
  for (auto& t : joiners) t.join();
  // Every caller observed the single flight's failure; joiners that raced
  // past the pending window ran (and failed) their own build, but nothing
  // was cached and the key is not wedged.
  EXPECT_EQ(failures.load(), 4);
  EXPECT_GE(invocations.load(), 1);
  EXPECT_FALSE(cache.find(key_of("shared-fail")));
  EXPECT_TRUE(cache.acquire(key_of("shared-fail"), [] { return dummy_op(10); }));
}

TEST(OperatorCache, FailureCooldownRejectsThenExpires) {
  auto clock = std::make_shared<ManualClock>();
  CacheOptions o;
  o.max_build_retries = 0;
  o.failure_cooldown_seconds = 10.0;
  o.clock = clock;
  OperatorCache cache(o);

  int invocations = 0;
  auto failing = [&]() -> ServedOperator {
    ++invocations;
    throw LaunchError("device fell over");
  };
  EXPECT_THROW(cache.acquire(key_of("cool"), failing), LaunchError);
  EXPECT_EQ(invocations, 1);

  // Inside the cooldown window the stored failure is rethrown and the
  // builder never runs — the negative-result cache absorbs retry storms.
  clock->advance(5.0);
  EXPECT_THROW(cache.acquire(key_of("cool"), failing), LaunchError);
  EXPECT_EQ(invocations, 1);
  EXPECT_EQ(cache.stats().cooldown_rejects, 1u);

  // Past the window the key builds again.
  clock->advance(6.0);
  auto h = cache.acquire(key_of("cool"), [&] {
    ++invocations;
    return dummy_op(10);
  });
  EXPECT_TRUE(h);
  EXPECT_EQ(invocations, 2);
}

TEST(OperatorCache, DeviceOomEvictsUnpinnedEntriesAndRetries) {
  CacheOptions o;
  o.sleep_fn = [](double) {};
  OperatorCache cache(o);
  (void)cache.acquire(key_of("old"), [] { return dummy_op(100); }); // unpinned: evictable
  auto pinned = cache.acquire(key_of("pinned"), [] { return dummy_op(100); });

  int invocations = 0;
  auto h = cache.acquire(key_of("big"), [&]() -> ServedOperator {
    if (++invocations == 1) throw DeviceOomError("device heap exhausted", 50);
    return dummy_op(100);
  });
  EXPECT_TRUE(h);
  EXPECT_EQ(invocations, 2);
  const CacheStats s = cache.stats();
  // The OOM retry evicted the unpinned LRU entry (and only it) without
  // consuming a backoff retry.
  EXPECT_EQ(s.oom_evictions, 1u);
  EXPECT_EQ(s.build_retries, 0u);
  EXPECT_FALSE(cache.find(key_of("old")));
  EXPECT_TRUE(cache.find(key_of("pinned")));
}

TEST(Coalescer, QueueFullErrorCarriesDepthAndCapacity) {
  auto op = serving_operator();
  const index_t n = op->size();
  CoalescerOptions o = manual_options(64, 1e9);
  o.queue_capacity = 2;
  Coalescer co(o, std::make_shared<ManualClock>());

  const Matrix x = test_util::random_matrix(n, 3, 41);
  Matrix y(n, 3);
  auto span_x = [&](index_t j) { return const_real_span(x.data() + j * n, static_cast<size_t>(n)); };
  auto span_y = [&](index_t j) { return real_span(y.data() + j * n, static_cast<size_t>(n)); };
  auto f0 = co.submit(op, RequestKind::Matvec, span_x(0), span_y(0));
  auto f1 = co.submit(op, RequestKind::Matvec, span_x(1), span_y(1));
  try {
    (void)co.submit(op, RequestKind::Matvec, span_x(2), span_y(2));
    FAIL() << "submit past capacity must throw QueueFullError";
  } catch (const QueueFullError& e) {
    EXPECT_EQ(e.depth(), 2u);
    EXPECT_EQ(e.capacity(), 2u);
    EXPECT_TRUE(e.retryable()); // load drains: callers may resubmit
  }
  EXPECT_EQ(co.drain(), 2);
  f0.get();
  f1.get();
}

TEST(Coalescer, RequestDeadlineExpiresUnderManualClock) {
  auto op = serving_operator(8e-8); // private operator: fresh counters
  const index_t n = op->size();
  CoalescerOptions o = manual_options(64, 1e9);
  o.request_deadline_seconds = 1.0;
  auto clock = std::make_shared<ManualClock>();
  Coalescer co(o, clock);

  const Matrix x = test_util::random_matrix(n, 2, 55);
  Matrix y(n, 2);
  std::vector<std::future<void>> futs;
  for (index_t j = 0; j < 2; ++j)
    futs.push_back(co.submit(op, RequestKind::Matvec,
                             const_real_span(x.data() + j * n, static_cast<size_t>(n)),
                             real_span(y.data() + j * n, static_cast<size_t>(n))));
  EXPECT_EQ(co.pump(), 0); // within deadline, batch not full: nothing moves
  clock->advance(1.5);
  EXPECT_EQ(co.pump(), 2); // both expired: resolved (exceptionally), not dispatched
  EXPECT_EQ(co.pending(), 0);
  for (auto& f : futs) {
    try {
      f.get();
      FAIL() << "expired request must fail with DeadlineExceededError";
    } catch (const DeadlineExceededError& e) {
      EXPECT_NEAR(e.waited_seconds(), 1.5, 1e-9);
      EXPECT_TRUE(e.retryable());
    }
  }
  EXPECT_EQ(op->metrics->snapshot().deadline_expired, 2u);
}

TEST(Coalescer, StopDrainsQueuedRequestsBeforeRejecting) {
  auto op = serving_operator();
  const index_t n = op->size();
  CoalescerOptions o;
  o.max_batch = 64;
  o.max_delay_seconds = 1e9; // nothing flushes on its own
  o.lanes = 1;
  Coalescer co(o);

  const Matrix x = test_util::random_matrix(n, 3, 59);
  Matrix y(n, 3);
  std::vector<std::future<void>> futs;
  for (index_t j = 0; j < 3; ++j)
    futs.push_back(co.submit(op, RequestKind::Matvec,
                             const_real_span(x.data() + j * n, static_cast<size_t>(n)),
                             real_span(y.data() + j * n, static_cast<size_t>(n))));
  co.stop(); // drain-then-reject: queued work completes...
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  // ...and only new submissions are refused.
  EXPECT_THROW((void)co.submit(op, RequestKind::Matvec,
                               const_real_span(x.data(), static_cast<size_t>(n)),
                               real_span(y.data(), static_cast<size_t>(n))),
               std::runtime_error);
}

TEST(LatencyHistogram, EmptyAndDegenerateQuantilesReturnZero) {
  LatencyHistogram h;
  // Regression: reporters snapshot operators before any request completes;
  // every quantile of an empty histogram must be 0, not a bucket midpoint.
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
  EXPECT_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()), 0.0);
  h.record(1e-3);
  EXPECT_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()), 0.0);
  EXPECT_GT(h.quantile(0.5), 0.0);
  h.reset();
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

} // namespace
} // namespace h2sketch::serve
