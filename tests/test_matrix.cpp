#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "test_common.hpp"

namespace h2sketch {
namespace {

TEST(Matrix, ZeroInitializedAndShape) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(0, 1) = 3;
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[1], 2);
  EXPECT_EQ(m.data()[2], 3);
}

TEST(Matrix, Identity) {
  Matrix i = Matrix::identity(4);
  for (index_t r = 0; r < 4; ++r)
    for (index_t c = 0; c < 4; ++c) EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, BlockViewSharesStorage) {
  Matrix m(4, 4);
  MatrixView b = m.block(1, 2, 2, 2);
  b(0, 0) = 7.5;
  EXPECT_EQ(m(1, 2), 7.5);
  EXPECT_EQ(b.ld, 4);
  EXPECT_EQ(b.rows, 2);
}

TEST(Matrix, NestedBlockViews) {
  Matrix m(6, 6);
  m(3, 4) = 9.0;
  MatrixView outer = m.block(2, 2, 4, 4);
  MatrixView inner = outer.block(1, 2, 1, 1);
  EXPECT_EQ(inner(0, 0), 9.0);
}

TEST(Matrix, CopyAndToMatrix) {
  const Matrix a = test_util::random_matrix(3, 2, 1);
  Matrix b = to_matrix(a.view());
  EXPECT_EQ(b(2, 1), a(2, 1));
  Matrix c(3, 2);
  copy(a.view(), c.view());
  EXPECT_EQ(max_abs_diff(a.view(), c.view()), 0.0);
}

TEST(Matrix, CopyShapeMismatchThrows) {
  Matrix a(3, 2), b(2, 3);
  EXPECT_THROW(copy(a.view(), b.view()), std::runtime_error);
}

TEST(Matrix, GatherRows) {
  Matrix a(4, 2);
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 2; ++j) a(i, j) = static_cast<real_t>(10 * i + j);
  std::vector<index_t> rows = {3, 1};
  Matrix g(2, 2);
  gather_rows(a.view(), rows, g.view());
  EXPECT_EQ(g(0, 0), 30.0);
  EXPECT_EQ(g(1, 1), 11.0);
}

TEST(Matrix, GatherBlock) {
  Matrix a(5, 5);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 5; ++j) a(i, j) = static_cast<real_t>(10 * i + j);
  std::vector<index_t> rows = {4, 0};
  std::vector<index_t> cols = {2, 3, 1};
  Matrix g(2, 3);
  gather_block(a.view(), rows, cols, g.view());
  EXPECT_EQ(g(0, 0), 42.0);
  EXPECT_EQ(g(1, 2), 1.0);
}

TEST(Matrix, ResizeDiscardsContents) {
  Matrix a(2, 2);
  a(0, 0) = 5;
  a.resize(3, 3);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a(0, 0), 0.0);
}

TEST(Matrix, EmptyMatrixIsSafe) {
  Matrix a(0, 5);
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(a.view().empty());
  Matrix b = to_matrix(a.view());
  EXPECT_EQ(b.cols(), 5);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2), b(2, 2);
  a(1, 1) = 3.0;
  b(1, 1) = 1.0;
  EXPECT_DOUBLE_EQ(max_abs_diff(a.view(), b.view()), 2.0);
}

} // namespace
} // namespace h2sketch
