#include <gtest/gtest.h>

#include "common/random.hpp"
#include "core/construction.hpp"
#include "core/error_est.hpp"
#include "h2/cheb_construction.hpp"
#include "h2/h2_dense.hpp"
#include "h2/update_sampler.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "la/blas.hpp"
#include "test_common.hpp"

/// Tests for the paper's third application: recompressing K_H2 + U V^T into
/// a fresh H2 matrix via Algorithm 1 (Fig. 5(c) workload).

namespace h2sketch::core {
namespace {

using tree::Admissibility;
using tree::ClusterTree;
using test_util::rel_fro_error;

struct UpdateFixture {
  std::shared_ptr<ClusterTree> tr;
  kern::ExponentialKernel kernel{0.2};
  h2::H2Matrix base;
  la::LowRank lr;
  Matrix exact; ///< densify(base) + lr

  explicit UpdateFixture(index_t n, index_t rank, std::uint64_t seed) {
    tr = test_util::build_cube_tree(n, 2, seed, 32);
    base = h2::build_cheb_h2(tr, Admissibility::general(0.7), kernel, 5);
    // Symmetric low-rank update U U^T keeps the operator symmetric, matching
    // the Schur-complement-update use case.
    la::LowRank asym = la::random_lowrank(n, n, rank, 0.05, seed + 7);
    lr.u = to_matrix(asym.u.view());
    lr.v = to_matrix(asym.u.view());
    exact = h2::densify(base);
    const Matrix lrd = lr.densify();
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) exact(i, j) += lrd(i, j);
  }
};

TEST(LowRankUpdate, RecompressionReachesTolerance) {
  UpdateFixture f(600, 8, 31);
  h2::UpdatedH2Sampler sampler(f.base, f.lr);
  h2::UpdatedH2EntryGenerator gen(f.base, f.lr);
  ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.initial_samples = 64;
  opts.sample_block = 32;
  auto res = construct_h2(f.tr, Admissibility::general(0.7), sampler, gen, opts);
  res.matrix.validate();
  ASSERT_TRUE(res.matrix.mtree.has_any_far());

  const Matrix rd = h2::densify(res.matrix);
  EXPECT_LT(rel_fro_error(rd.view(), f.exact.view()), 1e-4) << res.stats.summary();
}

TEST(LowRankUpdate, UpdateRaisesRanksOverBase) {
  // Recompress the un-updated operator and the updated one; the update adds
  // energy to far blocks, so adaptive ranks must not shrink.
  UpdateFixture f(600, 16, 32);

  h2::H2Sampler s_base(f.base);
  h2::H2EntryGenerator g_base(f.base);
  ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.initial_samples = 64;
  opts.sample_block = 16;
  auto r_base = construct_h2(f.tr, Admissibility::general(0.7), s_base, g_base, opts);

  h2::UpdatedH2Sampler s_upd(f.base, f.lr);
  h2::UpdatedH2EntryGenerator g_upd(f.base, f.lr);
  auto r_upd = construct_h2(f.tr, Admissibility::general(0.7), s_upd, g_upd, opts);

  EXPECT_GE(r_upd.matrix.max_rank(), r_base.matrix.max_rank());
  EXPECT_GT(r_upd.matrix.memory_bytes(), 0u);
}

TEST(LowRankUpdate, PowerMethodErrorAgreesWithDenseError) {
  UpdateFixture f(400, 8, 33);
  h2::UpdatedH2Sampler sampler(f.base, f.lr);
  h2::UpdatedH2EntryGenerator gen(f.base, f.lr);
  ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.initial_samples = 64;
  auto res = construct_h2(f.tr, Admissibility::general(0.7), sampler, gen, opts);

  // Two ways to measure the same error: power method on samplers vs dense.
  h2::UpdatedH2Sampler fresh(f.base, f.lr);
  h2::H2Sampler approx(res.matrix);
  const real_t est = relative_error_2norm(fresh, approx, 25);

  kern::DenseMatrixSampler exact_s(f.exact.view());
  const Matrix rd = h2::densify(res.matrix);
  kern::DenseMatrixSampler approx_s(rd.view());
  const real_t dense_est = relative_error_2norm(exact_s, approx_s, 25);

  // Same quantity through two paths: agree within power-method slack, and
  // both near or below the requested tolerance scale.
  EXPECT_LT(std::abs(est - dense_est), 5e-6);
  EXPECT_LT(est, 1e-4);
}

} // namespace
} // namespace h2sketch::core
