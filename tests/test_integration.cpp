#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "core/construction.hpp"
#include "core/error_est.hpp"
#include "h2/cheb_construction.hpp"
#include "h2/h2_dense.hpp"
#include "h2/h2_entry_eval.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "la/blas.hpp"
#include "test_common.hpp"

/// End-to-end pipeline tests at sizes where O(N^2) oracles are avoided, plus
/// determinism, configuration knobs and failure-injection cases.

namespace h2sketch {
namespace {

using core::ConstructionOptions;
using tree::Admissibility;
using tree::ClusterTree;

TEST(Integration, FullPipelineMatvecAgreesWithInputOperator) {
  // Chebyshev input -> sketching reconstruction -> compare matvecs only
  // (no densify), so this runs at N beyond the dense-oracle tests.
  const index_t n = 6000;
  auto tr = test_util::build_cube_tree(n, 3, 61, 32);
  kern::ExponentialKernel k(0.2);
  const h2::H2Matrix input = h2::build_cheb_h2(tr, Admissibility::general(0.9), k, 3);
  h2::H2Sampler sampler(input);
  h2::H2EntryGenerator gen(input);
  ConstructionOptions opts;
  opts.tol = 1e-7;
  opts.initial_samples = 96;
  opts.sample_block = 32;
  auto res = core::construct_h2(tr, Admissibility::general(0.9), sampler, gen, opts);

  Matrix x(n, 2), y1(n, 2), y2(n, 2);
  fill_gaussian(x.view(), GaussianStream(62));
  h2::h2_matvec(input, x.view(), y1.view());
  h2::h2_matvec(res.matrix, x.view(), y2.view());
  real_t diff = 0, ref = 0;
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) {
      diff += (y1(i, j) - y2(i, j)) * (y1(i, j) - y2(i, j));
      ref += y1(i, j) * y1(i, j);
    }
  EXPECT_LT(std::sqrt(diff / ref), 1e-5);
}

TEST(Integration, EntryEvalOfSketchBuiltMatrixMatchesDensify) {
  // The constructed H2 has non-uniform, possibly zero ranks; its entry
  // generator must still reproduce every entry.
  auto tr = test_util::build_cube_tree(600, 2, 63, 16);
  kern::Matern32Kernel k(0.3);
  kern::KernelMatVecSampler sampler(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-8;
  auto res = core::construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts);
  ASSERT_TRUE(res.matrix.mtree.has_any_far());

  const Matrix dense = h2::densify(res.matrix);
  h2::H2EntryGenerator eg(res.matrix);
  SmallRng rng(64);
  for (int t = 0; t < 300; ++t) {
    const index_t i = rng.next_index(600), j = rng.next_index(600);
    EXPECT_NEAR(eg.entry(i, j), dense(i, j), test_util::kEntryTol);
  }
}

TEST(Integration, ConstructionIsDeterministicAcrossRuns) {
  auto tr = test_util::build_cube_tree(500, 2, 65, 16);
  kern::ExponentialKernel k(0.2);
  kern::KernelMatVecSampler s1(*tr, k), s2(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-6;
  auto r1 = core::construct_h2(tr, Admissibility::general(0.7), s1, gen, opts);
  auto r2 = core::construct_h2(tr, Admissibility::general(0.7), s2, gen, opts);
  EXPECT_EQ(max_abs_diff(h2::densify(r1.matrix).view(), h2::densify(r2.matrix).view()), 0.0);
  EXPECT_EQ(r1.stats.total_samples, r2.stats.total_samples);
}

TEST(Integration, SeedChangesSamplesButNotQuality) {
  auto tr = test_util::build_cube_tree(500, 2, 66, 16);
  kern::ExponentialKernel k(0.2);
  kern::KernelMatVecSampler s1(*tr, k), s2(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions o1, o2;
  o1.tol = o2.tol = 1e-7;
  o2.seed = o1.seed + 1;
  auto r1 = core::construct_h2(tr, Admissibility::general(0.7), s1, gen, o1);
  auto r2 = core::construct_h2(tr, Admissibility::general(0.7), s2, gen, o2);
  // Different random sketches, same operator: both meet the tolerance.
  kern::KernelMatVecSampler exact(*tr, k);
  h2::H2Sampler a1(r1.matrix), a2(r2.matrix);
  EXPECT_LT(core::relative_error_2norm(exact, a1, 10), 1e-5);
  kern::KernelMatVecSampler exact2(*tr, k);
  EXPECT_LT(core::relative_error_2norm(exact2, a2, 10), 1e-5);
}

TEST(Integration, GivenNormEstimateIsHonored) {
  auto tr = test_util::build_cube_tree(400, 2, 67, 16);
  kern::ExponentialKernel k(0.2);
  kern::KernelMatVecSampler sampler(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.norm_est = core::NormEstimate::Given;
  opts.given_norm = 123.0;
  auto res = core::construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts);
  EXPECT_DOUBLE_EQ(res.stats.norm_estimate, 123.0);
}

TEST(Integration, TighterIdToleranceFactorRaisesRanks) {
  auto tr = test_util::build_cube_tree(600, 2, 68, 16);
  kern::ExponentialKernel k(0.2);
  kern::KernelMatVecSampler s1(*tr, k), s2(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions loose, tight;
  loose.tol = tight.tol = 1e-6;
  tight.id_tol_factor = 1e-2; // the error-compensation knob
  auto r_loose = core::construct_h2(tr, Admissibility::general(0.7), s1, gen, loose);
  auto r_tight = core::construct_h2(tr, Admissibility::general(0.7), s2, gen, tight);
  EXPECT_GE(r_tight.stats.max_rank, r_loose.stats.max_rank);
}

TEST(Integration, HugeToleranceYieldsTinyRanksButValidStructure) {
  auto tr = test_util::build_cube_tree(500, 2, 69, 16);
  kern::ExponentialKernel k(0.2);
  kern::KernelMatVecSampler sampler(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 0.5; // absurdly loose
  auto res = core::construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts);
  res.matrix.validate();
  EXPECT_LE(res.stats.max_rank, 8);
  // Matvec still runs (rank-0 nodes everywhere).
  Matrix x(500, 1), y(500, 1);
  fill_gaussian(x.view(), GaussianStream(70));
  EXPECT_NO_THROW(h2::h2_matvec(res.matrix, x.view(), y.view()));
}

TEST(Integration, SamplerSizeMismatchThrows) {
  auto tr = test_util::build_cube_tree(100, 2, 71, 16);
  Matrix wrong(50, 50);
  kern::DenseMatrixSampler sampler(wrong.view());
  kern::KernelEntryGenerator gen(*tr, kern::ExponentialKernel(0.2));
  // Temporary kernel object above would dangle; use a named one instead.
  kern::ExponentialKernel k(0.2);
  kern::KernelEntryGenerator gen2(*tr, k);
  ConstructionOptions opts;
  EXPECT_THROW(core::construct_h2(tr, Admissibility::general(0.7), sampler, gen2, opts),
               std::runtime_error);
}

TEST(Integration, DuplicatePointsCompressFine) {
  // Coincident points produce zero-diameter boxes and rank-1-ish blocks.
  geo::PointCloud pc(300, 2);
  SmallRng rng(72);
  for (index_t i = 0; i < 300; ++i) {
    const real_t x = (i % 30) / 30.0, y = (i / 30 % 10) / 10.0; // heavy duplication
    pc.coord(i, 0) = x;
    pc.coord(i, 1) = y;
  }
  auto tr = std::make_shared<ClusterTree>(ClusterTree::build(std::move(pc), 16));
  kern::GaussianKernel k(0.3);
  kern::KernelMatVecSampler sampler(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-6;
  auto res = core::construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts);
  res.matrix.validate();
  kern::KernelMatVecSampler exact(*tr, k);
  h2::H2Sampler approx(res.matrix);
  EXPECT_LT(core::relative_error_2norm(exact, approx, 10), 1e-4);
}

TEST(Integration, SampleCapReportedWhenImpossiblyTight) {
  auto tr = test_util::build_cube_tree(800, 2, 73, 16);
  kern::ExponentialKernel k(0.01); // essentially diagonal: high local rank
  kern::KernelMatVecSampler sampler(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-14;
  opts.sample_block = 8;
  opts.initial_samples = 8;
  opts.max_samples = 24; // force the cap
  auto res = core::construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts);
  res.matrix.validate(); // structure stays consistent even when capped
  EXPECT_LE(res.stats.total_samples, 24);
}

} // namespace
} // namespace h2sketch
