#include <gtest/gtest.h>

#include "common/random.hpp"
#include "la/blas.hpp"
#include "sparse/multifrontal.hpp"
#include "sparse/synthetic_front.hpp"
#include "test_common.hpp"

namespace h2sketch::sparse {
namespace {

TEST(Poisson, StencilStructureAndSymmetry) {
  const Grid g{4, 3, 1};
  const CsrMatrix a = poisson_matrix(g);
  EXPECT_EQ(a.n, 12);
  EXPECT_TRUE(a.is_symmetric());
  // Interior point (1,1) has 4 neighbours + diagonal.
  const index_t p = 1 + 1 * 4;
  EXPECT_EQ(a.row_ptr[static_cast<size_t>(p + 1)] - a.row_ptr[static_cast<size_t>(p)], 5);
  EXPECT_DOUBLE_EQ(a.at(p, p), 4.0);
  EXPECT_DOUBLE_EQ(a.at(p, p - 1), -1.0);
}

TEST(Poisson, ThreeDDiagonal) {
  const Grid g{3, 3, 3};
  const CsrMatrix a = poisson_matrix(g);
  EXPECT_EQ(a.n, 27);
  EXPECT_DOUBLE_EQ(a.at(13, 13), 6.0); // center point
  EXPECT_TRUE(a.is_symmetric());
}

TEST(Csr, SpmvMatchesDense) {
  const Grid g{5, 4, 1};
  const CsrMatrix a = poisson_matrix(g);
  const Matrix d = a.densify();
  const std::vector<real_t> x = test_util::random_vector(a.n, 1);
  std::vector<real_t> y(static_cast<size_t>(a.n)), yref(static_cast<size_t>(a.n));
  a.spmv(x, y);
  la::gemv(1.0, d.view(), la::Op::None, x, 0.0, yref);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], yref[i], 1e-13);
}

TEST(Csr, FromTripletsSumsDuplicates) {
  CsrMatrix m = CsrMatrix::from_triplets(3, {{0, 1, 2.0}, {0, 1, 3.0}, {2, 0, 1.0}});
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  EXPECT_EQ(m.nnz(), 2);
}

TEST(NestedDissection, VarsPartitionTheGrid) {
  const Grid g{9, 9, 1};
  const NdTree t = nested_dissection(g, 8);
  std::vector<index_t> all;
  for (const auto& node : t.nodes) all.insert(all.end(), node.vars.begin(), node.vars.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(static_cast<index_t>(all.size()), g.size());
  for (index_t i = 0; i < g.size(); ++i) EXPECT_EQ(all[static_cast<size_t>(i)], i);
}

TEST(NestedDissection, SeparatorsDisconnectChildren) {
  const Grid g{9, 9, 1};
  const CsrMatrix a = poisson_matrix(g);
  const NdTree t = nested_dissection(g, 8);
  // Collect subtree vars per node.
  std::vector<std::vector<index_t>> sub(t.nodes.size());
  for (index_t id : t.postorder) {
    const auto& node = t.nodes[static_cast<size_t>(id)];
    sub[static_cast<size_t>(id)] = node.vars;
    if (!node.is_leaf()) {
      for (index_t c : {node.left, node.right}) {
        sub[static_cast<size_t>(id)].insert(sub[static_cast<size_t>(id)].end(),
                                            sub[static_cast<size_t>(c)].begin(),
                                            sub[static_cast<size_t>(c)].end());
      }
    }
  }
  for (const auto& node : t.nodes) {
    if (node.is_leaf()) continue;
    std::vector<uint8_t> left_mark(static_cast<size_t>(a.n), 0);
    for (index_t v : sub[static_cast<size_t>(node.left)]) left_mark[static_cast<size_t>(v)] = 1;
    for (index_t v : sub[static_cast<size_t>(node.right)])
      for (index_t e = a.row_ptr[static_cast<size_t>(v)]; e < a.row_ptr[static_cast<size_t>(v + 1)];
           ++e)
        EXPECT_FALSE(left_mark[static_cast<size_t>(a.col[static_cast<size_t>(e)])])
            << "edge crosses separator";
  }
}

/// Dense reference: S = A_SS - A_SR A_RR^{-1} A_RS.
Matrix dense_schur(const CsrMatrix& a, const std::vector<index_t>& sep) {
  std::vector<uint8_t> is_sep(static_cast<size_t>(a.n), 0);
  for (index_t v : sep) is_sep[static_cast<size_t>(v)] = 1;
  std::vector<index_t> rest;
  for (index_t v = 0; v < a.n; ++v)
    if (!is_sep[static_cast<size_t>(v)]) rest.push_back(v);
  const Matrix d = a.densify();
  const index_t ns = static_cast<index_t>(sep.size()), nr = static_cast<index_t>(rest.size());
  Matrix ass(ns, ns), asr(ns, nr), arr(nr, nr), ars(nr, ns);
  gather_block(d.view(), sep, sep, ass.view());
  gather_block(d.view(), sep, rest, asr.view());
  gather_block(d.view(), rest, rest, arr.view());
  gather_block(d.view(), rest, sep, ars.view());
  la::cholesky(arr.view());
  la::cholesky_solve(arr.view(), ars.view()); // ars := A_RR^{-1} A_RS
  la::gemm(-1.0, asr.view(), la::Op::None, ars.view(), la::Op::None, 1.0, ass.view());
  return ass;
}

class MultifrontalSchur : public ::testing::TestWithParam<Grid> {};

TEST_P(MultifrontalSchur, RootFrontMatchesDenseSchurComplement) {
  const Grid g = GetParam();
  const CsrMatrix a = poisson_matrix(g);
  MultifrontalOptions opts;
  opts.max_leaf = 8;
  const MultifrontalResult mf = multifrontal_root_front(a, g, opts);
  ASSERT_FALSE(mf.root_vars.empty());
  const Matrix ref = dense_schur(a, mf.root_vars);
  EXPECT_LT(max_abs_diff(mf.root_front.view(), ref.view()), 1e-9);
}

TEST_P(MultifrontalSchur, RootFrontIsSymmetricPositiveDefinite) {
  const Grid g = GetParam();
  const CsrMatrix a = poisson_matrix(g);
  const MultifrontalResult mf = multifrontal_root_front(a, g, {8});
  const index_t ns = mf.root_front.rows();
  for (index_t j = 0; j < ns; ++j)
    for (index_t i = 0; i < ns; ++i)
      EXPECT_NEAR(mf.root_front(i, j), mf.root_front(j, i), 1e-11);
  Matrix chol = to_matrix(mf.root_front.view());
  EXPECT_NO_THROW(la::cholesky(chol.view()));
}

INSTANTIATE_TEST_SUITE_P(Grids, MultifrontalSchur,
                         ::testing::Values(Grid{9, 9, 1}, Grid{12, 7, 1}, Grid{5, 5, 5},
                                           Grid{7, 6, 5}));

TEST(Multifrontal, RootSeparatorGeometryIsPlanar) {
  const Grid g{9, 9, 9};
  const CsrMatrix a = poisson_matrix(g);
  const MultifrontalResult mf = multifrontal_root_front(a, g, {32});
  EXPECT_EQ(static_cast<index_t>(mf.root_vars.size()), 81); // 9x9 mid-plane
  const geo::PointCloud pc = grid_points(g, mf.root_vars);
  // All separator points share one coordinate (the split plane).
  bool planar = false;
  for (index_t d = 0; d < 3; ++d) {
    bool same = true;
    for (index_t i = 1; i < pc.size(); ++i)
      if (pc.coord(i, d) != pc.coord(0, d)) same = false;
    planar = planar || same;
  }
  EXPECT_TRUE(planar);
}

TEST(SyntheticFront, SymmetricWithDominantDiagonal) {
  const SyntheticFront f = make_synthetic_front(12, 12);
  const auto k = synthetic_front_kernel(f);
  EXPECT_EQ(f.points.size(), 144);
  real_t x[3], y[3];
  for (index_t d = 0; d < 3; ++d) {
    x[d] = f.points.coord(3, d);
    y[d] = f.points.coord(100, d);
  }
  EXPECT_DOUBLE_EQ(k.evaluate(x, y, 3), k.evaluate(y, x, 3));
  EXPECT_GT(k.evaluate(x, x, 3), k.evaluate(x, y, 3));
}

} // namespace
} // namespace h2sketch::sparse
