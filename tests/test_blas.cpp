#include "la/blas.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "test_common.hpp"

namespace h2sketch::la {
namespace {

using test_util::random_matrix;

// Scalar reference for C = alpha op(A) op(B) + beta C.
Matrix ref_gemm(real_t alpha, const Matrix& a, Op oa, const Matrix& b, Op ob, real_t beta,
                const Matrix& c) {
  const index_t m = oa == Op::None ? a.rows() : a.cols();
  const index_t k = oa == Op::None ? a.cols() : a.rows();
  const index_t n = ob == Op::None ? b.cols() : b.rows();
  Matrix out(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      real_t s = 0;
      for (index_t p = 0; p < k; ++p) {
        const real_t av = oa == Op::None ? a(i, p) : a(p, i);
        const real_t bv = ob == Op::None ? b(p, j) : b(j, p);
        s += av * bv;
      }
      out(i, j) = alpha * s + beta * c(i, j);
    }
  return out;
}

struct GemmCase {
  index_t m, n, k;
  Op oa, ob;
  real_t alpha, beta;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesScalarReference) {
  const auto p = GetParam();
  const Matrix a = p.oa == Op::None ? random_matrix(p.m, p.k, 1) : random_matrix(p.k, p.m, 1);
  const Matrix b = p.ob == Op::None ? random_matrix(p.k, p.n, 2) : random_matrix(p.n, p.k, 2);
  Matrix c = random_matrix(p.m, p.n, 3);
  const Matrix expected = ref_gemm(p.alpha, a, p.oa, b, p.ob, p.beta, c);
  gemm(p.alpha, a.view(), p.oa, b.view(), p.ob, p.beta, c.view());
  EXPECT_LT(max_abs_diff(c.view(), expected.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpCombosAndShapes, GemmTest,
    ::testing::Values(GemmCase{5, 7, 3, Op::None, Op::None, 1.0, 0.0},
                      GemmCase{5, 7, 3, Op::Trans, Op::None, 1.0, 0.0},
                      GemmCase{5, 7, 3, Op::None, Op::Trans, 1.0, 0.0},
                      GemmCase{5, 7, 3, Op::Trans, Op::Trans, 1.0, 0.0},
                      GemmCase{8, 8, 8, Op::None, Op::None, -2.0, 1.5},
                      GemmCase{1, 9, 4, Op::Trans, Op::Trans, 0.5, -1.0},
                      GemmCase{13, 1, 6, Op::None, Op::Trans, 2.0, 1.0},
                      GemmCase{4, 4, 1, Op::Trans, Op::None, 1.0, 1.0},
                      GemmCase{16, 11, 9, Op::None, Op::None, 3.0, 0.25}));

TEST(Gemm, ZeroInnerDimensionScalesByBeta) {
  Matrix a(4, 0), b(0, 3);
  Matrix c(4, 3);
  c.fill(2.0);
  gemm(1.0, a.view(), Op::None, b.view(), Op::None, 0.5, c.view());
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 4; ++i) EXPECT_EQ(c(i, j), 1.0);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(4, 3), b(4, 5), c(4, 5);
  EXPECT_THROW(gemm(1.0, a.view(), Op::None, b.view(), Op::None, 0.0, c.view()),
               std::runtime_error);
}

TEST(Gemm, StridedViewsWork) {
  Matrix big_a = random_matrix(8, 8, 4);
  Matrix big_b = random_matrix(8, 8, 5);
  Matrix c(3, 3);
  const Matrix a_copy = to_matrix(big_a.block(2, 1, 3, 4));
  const Matrix b_copy = to_matrix(big_b.block(0, 3, 4, 3));
  Matrix expect(3, 3);
  gemm(1.0, a_copy.view(), Op::None, b_copy.view(), Op::None, 0.0, expect.view());
  gemm(1.0, big_a.block(2, 1, 3, 4), Op::None, big_b.block(0, 3, 4, 3), Op::None, 0.0, c.view());
  EXPECT_LT(max_abs_diff(c.view(), expect.view()), 1e-14);
}

TEST(Gemv, MatchesGemm) {
  Matrix a = random_matrix(6, 4, 6);
  std::vector<real_t> x = {1, -2, 3, 0.5};
  std::vector<real_t> y(6, 1.0);
  std::vector<real_t> y2 = y;
  gemv(2.0, a.view(), Op::None, x, 3.0, y);
  for (index_t i = 0; i < 6; ++i) {
    real_t s = 0;
    for (index_t j = 0; j < 4; ++j) s += a(i, j) * x[static_cast<size_t>(j)];
    EXPECT_NEAR(y[static_cast<size_t>(i)], 2.0 * s + 3.0 * y2[static_cast<size_t>(i)], 1e-13);
  }
}

TEST(Gemv, TransposedMatchesManual) {
  Matrix a = random_matrix(3, 5, 7);
  std::vector<real_t> x = {1, 2, 3};
  std::vector<real_t> y(5, 0.0);
  gemv(1.0, a.view(), Op::Trans, x, 0.0, y);
  for (index_t j = 0; j < 5; ++j) {
    real_t s = 0;
    for (index_t i = 0; i < 3; ++i) s += a(i, j) * x[static_cast<size_t>(i)];
    EXPECT_NEAR(y[static_cast<size_t>(j)], s, 1e-13);
  }
}

TEST(Trsm, SolvesUpperTriangularSystems) {
  Matrix r(4, 4);
  SmallRng rng(8);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = rng.next_gaussian() + (i == j ? 4.0 : 0.0);
  const Matrix x = random_matrix(4, 3, 9);
  Matrix b(4, 3);
  gemm(1.0, r.view(), Op::None, x.view(), Op::None, 0.0, b.view());
  trsm_upper_left(r.view(), Op::None, b.view());
  EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-10);
}

TEST(Trsm, TransposedSolve) {
  Matrix r(4, 4);
  SmallRng rng(10);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = rng.next_gaussian() + (i == j ? 4.0 : 0.0);
  const Matrix x = random_matrix(4, 2, 11);
  Matrix b(4, 2);
  gemm(1.0, r.view(), Op::Trans, x.view(), Op::None, 0.0, b.view());
  trsm_upper_left(r.view(), Op::Trans, b.view());
  EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-10);
}

TEST(Trsm, UnitDiagonalIgnoresStoredDiagonal) {
  Matrix r(3, 3);
  r(0, 0) = 99;  // ignored
  r(0, 1) = 2;
  r(1, 1) = 99;
  r(1, 2) = -1;
  r(2, 2) = 99;
  Matrix b(3, 1);
  b(0, 0) = 5;
  b(1, 0) = 1;
  b(2, 0) = 2;
  trsm_upper_left(r.view(), Op::None, b.view(), /*unit_diag=*/true);
  EXPECT_NEAR(b(2, 0), 2.0, 1e-15);
  EXPECT_NEAR(b(1, 0), 1.0 + 2.0, 1e-15);
  EXPECT_NEAR(b(0, 0), 5.0 - 2.0 * 3.0, 1e-15);
}

TEST(Norms, FrobeniusAndVector) {
  Matrix a(2, 2);
  a(0, 0) = 3;
  a(1, 1) = 4;
  EXPECT_DOUBLE_EQ(norm_f(a.view()), 5.0);
  std::vector<real_t> x = {3, 4};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
}

TEST(VectorOps, DotAxpyScale) {
  std::vector<real_t> x = {1, 2, 3};
  std::vector<real_t> y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

} // namespace
} // namespace h2sketch::la
