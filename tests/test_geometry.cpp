#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "geometry/bounding_box.hpp"
#include "geometry/point_cloud.hpp"
#include "test_common.hpp"

namespace h2sketch::geo {
namespace {

TEST(PointCloud, UniformRandomCubeInRange) {
  const PointCloud pc = uniform_random_cube(500, 3, 1);
  EXPECT_EQ(pc.size(), 500);
  EXPECT_EQ(pc.dim(), 3);
  for (index_t i = 0; i < pc.size(); ++i)
    for (index_t d = 0; d < 3; ++d) {
      EXPECT_GE(pc.coord(i, d), 0.0);
      EXPECT_LT(pc.coord(i, d), 1.0);
    }
}

TEST(PointCloud, UniformGridSpacingAndCount) {
  const PointCloud pc = uniform_grid(4, 2);
  EXPECT_EQ(pc.size(), 16);
  EXPECT_DOUBLE_EQ(pc.coord(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(pc.coord(1, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(pc.coord(15, 0), 1.0);
  EXPECT_DOUBLE_EQ(pc.coord(15, 1), 1.0);
}

TEST(PointCloud, UniformGrid3D) {
  const PointCloud pc = uniform_grid(3, 3);
  EXPECT_EQ(pc.size(), 27);
  // Last point is the far corner.
  for (index_t d = 0; d < 3; ++d) EXPECT_DOUBLE_EQ(pc.coord(26, d), 1.0);
}

TEST(PointCloud, PlaneGridIsPlanar) {
  const PointCloud pc = plane_grid(5, 4, 0.25);
  EXPECT_EQ(pc.size(), 20);
  for (index_t i = 0; i < pc.size(); ++i) EXPECT_DOUBLE_EQ(pc.coord(i, 2), 0.25);
}

TEST(PointCloud, SpherePointsOnUnitSphere) {
  const PointCloud pc = sphere_surface(200);
  for (index_t i = 0; i < pc.size(); ++i) {
    real_t r2 = 0;
    for (index_t d = 0; d < 3; ++d) r2 += pc.coord(i, d) * pc.coord(i, d);
    EXPECT_NEAR(std::sqrt(r2), 1.0, test_util::kTightTol);
  }
}

TEST(PointCloud, Distance) {
  PointCloud pc(2, 3);
  pc.coord(1, 0) = 3.0;
  pc.coord(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(pc.distance(0, 1), 5.0);
}

TEST(BoundingBox, OfPointsIsTight) {
  PointCloud pc(3, 2);
  pc.coord(0, 0) = -1.0;
  pc.coord(1, 0) = 2.0;
  pc.coord(2, 1) = 5.0;
  std::vector<index_t> perm = {0, 1, 2};
  const BoundingBox b = BoundingBox::of_points(pc, perm, 0, 3);
  EXPECT_DOUBLE_EQ(b.lo[0], -1.0);
  EXPECT_DOUBLE_EQ(b.hi[0], 2.0);
  EXPECT_DOUBLE_EQ(b.lo[1], 0.0);
  EXPECT_DOUBLE_EQ(b.hi[1], 5.0);
  for (index_t i = 0; i < 3; ++i) EXPECT_TRUE(b.contains(pc, i));
}

TEST(BoundingBox, SubrangeRespectsPermutation) {
  PointCloud pc(4, 1);
  for (index_t i = 0; i < 4; ++i) pc.coord(i, 0) = static_cast<real_t>(i);
  std::vector<index_t> perm = {3, 1, 0, 2};
  const BoundingBox b = BoundingBox::of_points(pc, perm, 0, 2); // points 3 and 1
  EXPECT_DOUBLE_EQ(b.lo[0], 1.0);
  EXPECT_DOUBLE_EQ(b.hi[0], 3.0);
}

TEST(BoundingBox, DiameterIsDiagonalLength) {
  BoundingBox b;
  b.dim = 3;
  b.hi = {3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(b.diameter(), 5.0);
}

TEST(BoundingBox, DistanceZeroWhenOverlapping) {
  BoundingBox a, b;
  a.dim = b.dim = 2;
  a.hi = {2, 2, 0};
  b.lo = {1, 1, 0};
  b.hi = {3, 3, 0};
  EXPECT_DOUBLE_EQ(a.distance(b), 0.0);
}

TEST(BoundingBox, DistanceBetweenSeparatedBoxes) {
  BoundingBox a, b;
  a.dim = b.dim = 2;
  a.hi = {1, 1, 0};
  b.lo = {4, 5, 0};
  b.hi = {6, 6, 0};
  EXPECT_DOUBLE_EQ(a.distance(b), 5.0); // gap (3, 4)
  EXPECT_DOUBLE_EQ(b.distance(a), 5.0); // symmetric
}

TEST(BoundingBox, WidestDim) {
  BoundingBox b;
  b.dim = 3;
  b.hi = {1.0, 5.0, 2.0};
  EXPECT_EQ(b.widest_dim(), 1);
}

} // namespace
} // namespace h2sketch::geo
