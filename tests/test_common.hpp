#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/matrix.hpp"
#include "common/random.hpp"
#include "geometry/point_cloud.hpp"
#include "kernels/entry_gen.hpp"
#include "kernels/kernel.hpp"
#include "la/blas.hpp"
#include "tree/cluster_tree.hpp"

/// \file test_common.hpp
/// Shared fixture layer for the h2sketch test suites: dense reference
/// matrices, random test data, error metrics, cluster-tree builders and the
/// tolerance constants the suites agree on. Every suite includes this header
/// instead of carrying its own copy of these helpers.

namespace h2sketch::test_util {

/// Dense blocks that must agree entry-for-entry, up to roundoff.
inline constexpr real_t kExactTol = 1e-14;
/// Factorizations/orthogonality checks where error accumulates mildly.
inline constexpr real_t kTightTol = 1e-12;
/// Per-entry evaluation against a densified operator.
inline constexpr real_t kEntryTol = 1e-11;
/// Matvec vs densify agreement, relative to ||A||_F.
inline constexpr real_t kMatvecRelTol = 1e-10;
/// Statistical moment checks on ~1e5 variates (mean, variance).
inline constexpr real_t kMeanTol = 0.02;
inline constexpr real_t kVarTol = 0.03;

/// m x n matrix with iid standard Gaussian entries, deterministic in seed.
inline Matrix random_matrix(index_t m, index_t n, std::uint64_t seed) {
  Matrix a(m, n);
  SmallRng rng(seed);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.next_gaussian();
  return a;
}

/// Length-n vector with iid standard Gaussian entries, deterministic in seed.
inline std::vector<real_t> random_vector(index_t n, std::uint64_t seed) {
  std::vector<real_t> v(static_cast<size_t>(n));
  SmallRng rng(seed);
  for (auto& x : v) x = rng.next_gaussian();
  return v;
}

/// Rank-r m x n matrix built as a product of Gaussian factors.
inline Matrix rank_r_matrix(index_t m, index_t n, index_t r, std::uint64_t seed) {
  const Matrix u = random_matrix(m, r, seed);
  const Matrix v = random_matrix(r, n, seed + 1);
  Matrix a(m, n);
  la::gemm(1.0, u.view(), la::Op::None, v.view(), la::Op::None, 0.0, a.view());
  return a;
}

/// Relative Frobenius error ||approx - exact||_F / ||exact||_F.
inline real_t rel_fro_error(ConstMatrixView approx, ConstMatrixView exact) {
  Matrix diff = to_matrix(approx);
  for (index_t j = 0; j < diff.cols(); ++j)
    for (index_t i = 0; i < diff.rows(); ++i) diff(i, j) -= exact(i, j);
  return la::norm_f(diff.view()) / la::norm_f(exact);
}

/// Cluster tree over n uniform random points in the unit dim-cube.
inline tree::ClusterTree cube_tree(index_t n, index_t dim, std::uint64_t seed,
                                   index_t leaf_size) {
  return tree::ClusterTree::build(geo::uniform_random_cube(n, dim, seed), leaf_size);
}

/// Shared-ownership variant for APIs that keep the tree alive.
inline std::shared_ptr<tree::ClusterTree> build_cube_tree(index_t n, index_t dim,
                                                          std::uint64_t seed,
                                                          index_t leaf_size) {
  return std::make_shared<tree::ClusterTree>(cube_tree(n, dim, seed, leaf_size));
}

/// Dense kernel matrix in tree-permuted ordering: the O(N^2) ground truth
/// every compression test measures against.
inline Matrix dense_kernel_matrix(const tree::ClusterTree& t, const kern::KernelFunction& k) {
  const index_t n = t.num_points();
  kern::KernelEntryGenerator gen(t, k);
  std::vector<index_t> all(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
  Matrix kd(n, n);
  gen.generate_block(all, all, kd.view());
  return kd;
}

} // namespace h2sketch::test_util
