#include <gtest/gtest.h>


#include <cmath>
#include "common/random.hpp"
#include "la/blas.hpp"
#include "sparse/multifrontal.hpp"
#include "test_common.hpp"

/// Multifrontal solve path: the full factorization (keep_factors) must solve
/// A x = b to machine precision.

namespace h2sketch::sparse {
namespace {

class MfSolve : public ::testing::TestWithParam<Grid> {};

TEST_P(MfSolve, SolvesPoissonSystem) {
  const Grid g = GetParam();
  const CsrMatrix a = poisson_matrix(g);
  MultifrontalOptions opts;
  opts.max_leaf = 16;
  opts.keep_factors = true;
  const MultifrontalResult mf = multifrontal_root_front(a, g, opts);

  const std::vector<real_t> b = test_util::random_vector(a.n, 5);
  std::vector<real_t> x(static_cast<size_t>(a.n)), r(static_cast<size_t>(a.n));
  mf.solve(b, x);
  a.spmv(x, r);
  real_t resid = 0, bnorm = 0;
  for (size_t i = 0; i < b.size(); ++i) {
    resid += (r[i] - b[i]) * (r[i] - b[i]);
    bnorm += b[i] * b[i];
  }
  EXPECT_LT(std::sqrt(resid / bnorm), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Grids, MfSolve,
                         ::testing::Values(Grid{9, 9, 1}, Grid{16, 11, 1}, Grid{6, 6, 6},
                                           Grid{8, 7, 6}));

TEST(MfSolve, MatchesDenseCholeskySolve) {
  const Grid g{10, 9, 1};
  const CsrMatrix a = poisson_matrix(g);
  MultifrontalOptions opts;
  opts.max_leaf = 8;
  opts.keep_factors = true;
  const MultifrontalResult mf = multifrontal_root_front(a, g, opts);

  const std::vector<real_t> b = test_util::random_vector(a.n, 6);
  std::vector<real_t> x(static_cast<size_t>(a.n));
  mf.solve(b, x);

  Matrix d = a.densify();
  Matrix rhs(a.n, 1);
  for (index_t i = 0; i < a.n; ++i) rhs(i, 0) = b[static_cast<size_t>(i)];
  la::cholesky(d.view());
  la::cholesky_solve(d.view(), rhs.view());
  for (index_t i = 0; i < a.n; ++i)
    EXPECT_NEAR(x[static_cast<size_t>(i)], rhs(i, 0), 1e-10);
}

TEST(MfSolve, CompressedRootFrontRoundTripsPoissonSolve) {
  // The Fig. 6(b) end-to-end story: the assembled root front is
  // HSS-compressed over the separator geometry and ULV-factored; the solve
  // path routes the root block through the ULV sweeps and must still
  // round-trip A x = b on the Poisson grid.
  for (const Grid g : {Grid{12, 12, 1}, Grid{8, 8, 8}}) {
    const CsrMatrix a = poisson_matrix(g);
    MultifrontalOptions opts;
    opts.max_leaf = 16;
    opts.keep_factors = true;
    opts.compress_root = true;
    opts.root_tol = 1e-10;
    opts.root_leaf_size = 16;
    const MultifrontalResult mf = multifrontal_root_front(a, g, opts);
    ASSERT_NE(mf.root_ulv, nullptr);
    EXPECT_TRUE(mf.factors[static_cast<size_t>(mf.tree.root)].empty());
    EXPECT_GT(mf.root_ulv->ulv.memory_bytes(), 0u);

    const std::vector<real_t> b = test_util::random_vector(a.n, 7);
    std::vector<real_t> x(static_cast<size_t>(a.n)), r(static_cast<size_t>(a.n));
    mf.solve(b, x);
    a.spmv(x, r);
    real_t resid = 0, bnorm = 0;
    for (size_t i = 0; i < b.size(); ++i) {
      resid += (r[i] - b[i]) * (r[i] - b[i]);
      bnorm += b[i] * b[i];
    }
    // The only approximation in the pipeline is the root compression at
    // root_tol; the grid operator is mildly conditioned, so the end-to-end
    // residual stays within a few orders of that.
    EXPECT_LT(std::sqrt(resid / bnorm), 1e-6) << "grid " << g.nx << "x" << g.ny << "x" << g.nz;
  }
}

TEST(MfSolve, CompressedRootMatchesDenseRootSolve) {
  const Grid g{10, 10, 1};
  const CsrMatrix a = poisson_matrix(g);
  MultifrontalOptions dense_opts;
  dense_opts.max_leaf = 8;
  dense_opts.keep_factors = true;
  const MultifrontalResult dense_mf = multifrontal_root_front(a, g, dense_opts);

  MultifrontalOptions hss_opts = dense_opts;
  hss_opts.compress_root = true;
  hss_opts.root_tol = 1e-12;
  hss_opts.root_leaf_size = 8;
  const MultifrontalResult hss_mf = multifrontal_root_front(a, g, hss_opts);

  const std::vector<real_t> b = test_util::random_vector(a.n, 8);
  std::vector<real_t> x_dense(static_cast<size_t>(a.n)), x_hss(static_cast<size_t>(a.n));
  dense_mf.solve(b, x_dense);
  hss_mf.solve(b, x_hss);
  for (index_t i = 0; i < a.n; ++i)
    EXPECT_NEAR(x_hss[static_cast<size_t>(i)], x_dense[static_cast<size_t>(i)], 1e-7);
}

TEST(MfSolve, SolveWithoutFactorsThrows) {
  const Grid g{6, 6, 1};
  const CsrMatrix a = poisson_matrix(g);
  const MultifrontalResult mf = multifrontal_root_front(a, g, {8, false});
  std::vector<real_t> b(static_cast<size_t>(a.n), 1.0), x(static_cast<size_t>(a.n));
  EXPECT_THROW(mf.solve(b, x), std::runtime_error);
}

} // namespace
} // namespace h2sketch::sparse
