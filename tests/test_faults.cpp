#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "backend/cpu_backend.hpp"
#include "backend/fault_injection.hpp"
#include "backend/registry.hpp"
#include "batched/device.hpp"
#include "common/errors.hpp"
#include "common/matrix.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/entry_gen.hpp"
#include "kernels/kernels.hpp"
#include "serve/coalescer.hpp"
#include "serve/operator_cache.hpp"
#include "solver/hss_construction.hpp"
#include "solver/ulv.hpp"
#include "test_common.hpp"

/// \file test_faults.cpp
/// Fault tolerance: the FaultInjectingDevice decorator (schedules, sites,
/// determinism), the typed error taxonomy, the solver's ridge-retry
/// recovery, the coalescer's degraded-launch retry — and the fault-sweep
/// chaos test, which walks a one-shot fault across every injection point of
/// a build+factor+serve cycle and asserts the system neither crashes, nor
/// leaks, nor gives different answers after recovery.
///
/// The sweep is strided by default (tier1). Set H2SKETCH_FAULT_SWEEP=full
/// to walk every point (the `test_faults_full` slow ctest registration).

namespace h2sketch {
namespace {

using backend::FaultSchedule;
using backend::FaultSite;
using backend::FaultStats;

// --- schedule parsing ----------------------------------------------------

TEST(FaultSchedule, ParsesEnvSyntax) {
  EXPECT_EQ(FaultSchedule::parse("off").kind, FaultSchedule::Kind::Off);

  const FaultSchedule os = FaultSchedule::parse("oneshot:7");
  EXPECT_EQ(os.kind, FaultSchedule::Kind::OneShot);
  EXPECT_EQ(os.index, 7u);
  EXPECT_FALSE(os.site.has_value());

  const FaultSchedule osa = FaultSchedule::parse("oneshot:3:alloc");
  ASSERT_TRUE(osa.site.has_value());
  EXPECT_EQ(*osa.site, FaultSite::Alloc);

  const FaultSchedule ev = FaultSchedule::parse("every:5:launch");
  EXPECT_EQ(ev.kind, FaultSchedule::Kind::EveryNth);
  EXPECT_EQ(ev.period, 5u);
  ASSERT_TRUE(ev.site.has_value());
  EXPECT_EQ(*ev.site, FaultSite::Launch);

  const FaultSchedule pr = FaultSchedule::parse("prob:0.01:42:copy");
  EXPECT_EQ(pr.kind, FaultSchedule::Kind::Probability);
  EXPECT_DOUBLE_EQ(pr.probability, 0.01);
  EXPECT_EQ(pr.seed, 42u);
  ASSERT_TRUE(pr.site.has_value());
  EXPECT_EQ(*pr.site, FaultSite::Copy);

  EXPECT_EQ(*FaultSchedule::parse("prob:0.5:0:any").site == FaultSite::Alloc, false);
  EXPECT_FALSE(FaultSchedule::parse("prob:0.5").site.has_value());

  // Empty means "off" (the unset-environment-variable reading).
  EXPECT_EQ(FaultSchedule::parse("").kind, FaultSchedule::Kind::Off);
  EXPECT_THROW((void)FaultSchedule::parse("oneshot"), std::runtime_error);
  EXPECT_THROW((void)FaultSchedule::parse("oneshot:x"), std::runtime_error);
  EXPECT_THROW((void)FaultSchedule::parse("every:0"), std::runtime_error);
  EXPECT_THROW((void)FaultSchedule::parse("prob:1.5"), std::runtime_error);
  EXPECT_THROW((void)FaultSchedule::parse("oneshot:1:gpu"), std::runtime_error);
}

TEST(ErrorTaxonomy, RetryabilityAndPayloads) {
  const DeviceOomError oom("oom", 4096);
  EXPECT_TRUE(oom.retryable());
  EXPECT_EQ(oom.requested_bytes(), 4096u);
  EXPECT_TRUE(LaunchError("launch").retryable());
  EXPECT_FALSE(NumericalError("pivot").retryable());
  const QueueFullError qf("full", 7, 8);
  EXPECT_TRUE(qf.retryable());
  EXPECT_EQ(qf.depth(), 7u);
  EXPECT_EQ(qf.capacity(), 8u);
  const DeadlineExceededError dl("late", 1.5);
  EXPECT_TRUE(dl.retryable());
  EXPECT_DOUBLE_EQ(dl.waited_seconds(), 1.5);
  // Every taxonomy member is catchable as std::runtime_error, so legacy
  // catch sites keep working.
  EXPECT_THROW(throw NumericalError("pivot"), std::runtime_error);
}

// --- injector mechanics --------------------------------------------------

TEST(FaultInjector, OneShotAllocationFaultFiresExactlyOnce) {
  auto dev = backend::make_fault_injecting_device(backend::make_cpu_backend(), "faulty-test",
                                                  FaultSchedule::one_shot_at(2));
  EXPECT_EQ(dev->memory_owner(), dev->inner()->memory_owner());
  std::vector<backend::DeviceBuffer> bufs;
  for (int i = 0; i < 5; ++i) {
    if (i == 2) {
      try {
        (void)dev->allocate(64);
        FAIL() << "allocation point 2 must fault";
      } catch (const DeviceOomError& e) {
        EXPECT_EQ(e.requested_bytes(), 64u);
      }
    } else {
      bufs.push_back(dev->allocate(64));
    }
  }
  const FaultStats s = dev->fault_stats();
  EXPECT_EQ(s.alloc_points, 5u);
  EXPECT_EQ(s.injected, 1u);
  bufs.clear(); // deallocation never injects: RAII teardown is safe
  EXPECT_EQ(dev->stats().live_bytes, 0u);
}

TEST(FaultInjector, SiteFilterSelectsLaunchPointsOnly) {
  auto dev = backend::make_fault_injecting_device(
      backend::make_cpu_backend(), "faulty-test",
      FaultSchedule::one_shot_at(0, FaultSite::Launch));
  batched::ExecutionContext ctx({dev, backend::LaunchMode::Batched});

  auto buf = dev->allocate(64);          // alloc point: not considered
  dev->fill_zero(buf.data(), 64);        // copy point: not considered
  EXPECT_THROW(dev->potrf(ctx, batched::kSampleStream, {}), LaunchError);
  dev->potrf(ctx, batched::kSampleStream, {}); // one-shot already fired

  const FaultStats s = dev->fault_stats();
  EXPECT_EQ(s.alloc_points, 1u);
  EXPECT_EQ(s.copy_points, 1u);
  EXPECT_EQ(s.launch_points, 2u);
  EXPECT_EQ(s.considered, 2u); // only the launch points matched the filter
  EXPECT_EQ(s.injected, 1u);
}

TEST(FaultInjector, EveryNthAndProbabilityAreDeterministic) {
  auto dev = backend::make_fault_injecting_device(backend::make_cpu_backend(), "faulty-test",
                                                  FaultSchedule::every_nth(3));
  auto pattern_of = [&dev] {
    std::vector<int> fired;
    for (int i = 0; i < 12; ++i) {
      try {
        (void)dev->allocate(16);
      } catch (const DeviceOomError&) {
        fired.push_back(i);
      }
    }
    return fired;
  };
  EXPECT_EQ(pattern_of(), (std::vector<int>{2, 5, 8, 11}));

  dev->set_schedule(FaultSchedule::with_probability(0.5, 1234));
  const auto p1 = pattern_of();
  dev->reset_fault_state(); // same seed, indices restart: same pattern
  const auto p2 = pattern_of();
  EXPECT_EQ(p1, p2);
  EXPECT_FALSE(p1.empty());
  EXPECT_LT(p1.size(), 12u);

  dev->set_schedule(FaultSchedule::with_probability(0.5, 99));
  EXPECT_NE(pattern_of(), p1); // a different seed gives a different pattern
}

// --- solver recovery -----------------------------------------------------

TEST(UlvRecovery, EscalatingRidgeRescuesWithinLadderElseNumericalError) {
  // A = K_exp - 0.5 I: symmetric but clearly indefinite (the exponential
  // kernel matrix is PSD with tiny smallest eigenvalue, so lambda_min(A) is
  // about -0.5).
  auto tr = test_util::build_cube_tree(96, 2, 23, 16);
  const kern::ExponentialKernel base(0.3);
  const kern::RidgeKernel kernel(base, -0.5);
  const Matrix kd = test_util::dense_kernel_matrix(*tr, kernel);
  core::ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  batched::ExecutionContext ctx(backend::shared_backend("cpu"));
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, kernel);
  auto res = solver::build_hss(tr, sampler, gen, opts, ctx);

  // The default ladder caps at 1e-6 of the diagonal scale: far too small to
  // mask a genuinely indefinite matrix, so the typed error surfaces.
  EXPECT_THROW((void)solver::ulv_factor(res.matrix, ctx), NumericalError);

  // A ladder that reaches past |lambda_min| rescues on the first retry —
  // and reports the ridge it folded in.
  solver::UlvOptions uo;
  uo.max_ridge_retries = 1;
  uo.ridge_rel = 4.0; // first ridge = 4.0 * scale = 4.0 * 0.5 = 2.0
  auto f = solver::ulv_factor(res.matrix, ctx, uo);
  EXPECT_DOUBLE_EQ(f.ridge_applied(), 2.0);

  // The factor is of A + ridge*I: verify through the compressed matvec.
  const index_t n = res.matrix.size();
  const Matrix b = test_util::random_matrix(n, 2, 31);
  Matrix x(n, 2), ax(n, 2);
  f.solve_many(b.view(), x.view(), ctx);
  res.matrix.matvec(ctx, x.view(), ax.view());
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) ax(i, j) += f.ridge_applied() * x(i, j);
  EXPECT_LT(test_util::rel_fro_error(ax.view(), b.view()), 1e-8);
}

TEST(UlvRecovery, SpdMatrixFactorsWithZeroRidge) {
  auto tr = test_util::build_cube_tree(96, 2, 29, 16);
  const kern::ExponentialKernel base(0.3);
  const kern::RidgeKernel kernel(base, 1.0);
  const Matrix kd = test_util::dense_kernel_matrix(*tr, kernel);
  core::ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  batched::ExecutionContext ctx(backend::shared_backend("cpu"));
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, kernel);
  auto res = solver::build_hss(tr, sampler, gen, opts, ctx);
  auto f = solver::ulv_factor(res.matrix, ctx);
  // The recovery machinery must be invisible on the healthy path: no ridge,
  // bitwise-identical factor to the pre-recovery behavior.
  EXPECT_EQ(f.ridge_applied(), 0.0);
}

// --- serving degrade path ------------------------------------------------

serve::OperatorHandle faulty_operator(serve::OperatorCache& cache) {
  static const kern::ExponentialKernel base(0.3);
  static const kern::RidgeKernel kernel(base, 1.0);
  static const geo::PointCloud points = geo::uniform_random_cube(128, 3, 91);
  serve::ServeBuildOptions opts;
  opts.leaf_size = 16;
  opts.construction.tol = 1e-8;
  opts.construction.sample_block = 16;
  opts.construction.initial_samples = 32;
  return cache.acquire(
      serve::make_operator_key(points, kernel, opts, "faulty-cpu"),
      [&] { return serve::build_served_operator(points, kernel, opts, "faulty-cpu"); });
}

TEST(Degrade, CoalescedLaunchRetriesOnFallbackBackendAfterFault) {
  EXPECT_EQ(backend::degraded_backend_name("faulty-cpu"), "cpu");
  EXPECT_EQ(backend::degraded_backend_name("faulty-simdevice"), "simdevice");
  EXPECT_EQ(backend::degraded_backend_name("cpu"), "cpu");

  auto inj = backend::fault_injector("faulty-cpu");
  inj->set_schedule(FaultSchedule::off());
  serve::OperatorCache cache;
  auto op = faulty_operator(cache); // built fault-free under "faulty-cpu"
  const index_t n = op->size();

  serve::CoalescerOptions o;
  o.max_batch = 2;
  o.max_delay_seconds = 1e9;
  o.manual_pump = true;
  serve::Coalescer co(o, std::make_shared<serve::ManualClock>());

  const Matrix xs = test_util::random_matrix(n, 2, 7);
  Matrix ys(n, 2);
  std::vector<std::future<void>> futs;
  for (index_t j = 0; j < 2; ++j)
    futs.push_back(co.submit(op, serve::RequestKind::Matvec,
                             const_real_span(xs.data() + j * n, static_cast<size_t>(n)),
                             real_span(ys.data() + j * n, static_cast<size_t>(n))));

  // Arm a one-shot launch fault, then pump: the coalesced launch fails on
  // "faulty-cpu" and is retried once on the fault-free "cpu" config, which
  // shares the operator's device heap — the requests succeed.
  inj->set_schedule(FaultSchedule::one_shot_at(0, FaultSite::Launch));
  EXPECT_EQ(co.pump(), 2);
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  inj->set_schedule(FaultSchedule::off());

  const serve::MetricsSnapshot m = op->metrics->snapshot();
  EXPECT_EQ(m.launch_failures, 1u);
  EXPECT_EQ(m.degraded_launches, 1u);

  // The degraded launch computes the same blocked matvec.
  Matrix y_ref(n, 2);
  batched::ExecutionContext ctx(backend::shared_backend("cpu"));
  op->matrix.matvec(ctx, xs.view(), y_ref.view());
  EXPECT_EQ(max_abs_diff(ys.view(), y_ref.view()), 0.0);
}

// --- the fault sweep -----------------------------------------------------

struct CycleResult {
  Matrix y; ///< matvec output
  Matrix x; ///< solve output
};

/// One full build + factor + matvec + solve cycle on `backend_name`.
/// Deterministic: same tree, kernel, seeds and launch order every call.
CycleResult run_cycle(const std::string& backend_name) {
  auto tr = test_util::build_cube_tree(64, 2, 17, 16);
  static const kern::ExponentialKernel base(0.3);
  static const kern::RidgeKernel kernel(base, 1.0);
  core::ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  batched::ExecutionContext ctx(backend::shared_backend(backend_name));
  kern::KernelMatVecSampler sampler(*tr, kernel);
  kern::KernelEntryGenerator gen(*tr, kernel);
  auto res = solver::build_hss(tr, sampler, gen, opts, ctx);
  auto f = solver::ulv_factor(res.matrix, ctx);
  const index_t n = res.matrix.size();
  const Matrix xin = test_util::random_matrix(n, 2, 5);
  CycleResult out{Matrix(n, 2), Matrix(n, 2)};
  res.matrix.matvec(ctx, xin.view(), out.y.view());
  f.solve_many(xin.view(), out.x.view(), ctx);
  return out;
}

TEST(FaultSweep, OneShotFaultAtEveryPointRecoversBitwiseWithoutLeaks) {
  auto inj = backend::fault_injector("faulty-simdevice");
  inj->set_schedule(FaultSchedule::off());

  // Probe run: schedule off still counts points, so one fault-free cycle
  // measures the injection index space the sweep walks — and produces the
  // bitwise reference results.
  const CycleResult ref = run_cycle("faulty-simdevice");
  const std::uint64_t total = inj->fault_stats().points();
  ASSERT_GT(total, 0u);
  const std::uint64_t live0 = inj->stats().live_bytes;

  const char* mode = std::getenv("H2SKETCH_FAULT_SWEEP");
  const bool full = mode != nullptr && std::string_view(mode) == "full";
  const std::uint64_t stride = full ? 1 : std::max<std::uint64_t>(1, total / 23);

  std::uint64_t swept = 0, surfaced = 0;
  for (std::uint64_t k = 0; k < total; k += stride) {
    inj->set_schedule(FaultSchedule::one_shot_at(k));
    CycleResult got;
    try {
      got = run_cycle("faulty-simdevice");
    } catch (const Error&) {
      // The typed fault surfaced; the one-shot disarmed itself when it
      // fired, so the client-level retry — what the serving layer's
      // policies automate — runs clean.
      ++surfaced;
      EXPECT_EQ(inj->fault_stats().injected, 1u) << "fault point " << k;
      got = run_cycle("faulty-simdevice");
    }
    EXPECT_EQ(max_abs_diff(got.y.view(), ref.y.view()), 0.0)
        << "matvec diverged after fault at point " << k;
    EXPECT_EQ(max_abs_diff(got.x.view(), ref.x.view()), 0.0)
        << "solve diverged after fault at point " << k;
    EXPECT_EQ(inj->stats().live_bytes, live0) << "device leak after fault at point " << k;
    ++swept;
  }
  inj->set_schedule(FaultSchedule::off());

  // Nothing below run_cycle retries launch faults, so every injected fault
  // must have surfaced as a typed error (none swallowed, none crashed).
  EXPECT_EQ(surfaced, swept);
  RecordProperty("fault_points", static_cast<int>(total));
  RecordProperty("fault_points_swept", static_cast<int>(swept));
}

} // namespace
} // namespace h2sketch
